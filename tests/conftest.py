"""Shared fixtures for the BlurNet reproduction test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

# Make the package importable even when it has not been pip-installed
# (the offline environment cannot build editable wheels).
SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.core import DefenseConfig, DefendedClassifier  # noqa: E402
from repro.data import make_dataset, make_stop_sign_eval_set, sticker_mask, train_test_split  # noqa: E402
from repro.models import TrainingConfig  # noqa: E402


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Deterministic random generator shared by tests."""

    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small synthetic dataset (64 images, 16x16) for fast training tests."""

    return make_dataset(64, image_size=16, seed=3)


@pytest.fixture(scope="session")
def tiny_split(tiny_dataset):
    """Train/test split of the tiny dataset."""

    return train_test_split(tiny_dataset, test_fraction=0.25, seed=3)


@pytest.fixture(scope="session")
def tiny_training_config() -> TrainingConfig:
    """Two-epoch training configuration used by model-level tests."""

    return TrainingConfig(epochs=2, batch_size=16, learning_rate=3e-3, seed=0)


@pytest.fixture(scope="session")
def tiny_baseline(tiny_split, tiny_training_config) -> DefendedClassifier:
    """A baseline classifier trained briefly on the tiny dataset (shared)."""

    train_set, _test_set = tiny_split
    classifier = DefendedClassifier.build(DefenseConfig.baseline(), seed=0, image_size=16)
    classifier.fit(train_set, tiny_training_config)
    return classifier


@pytest.fixture(scope="session")
def tiny_eval_set():
    """A six-view stop-sign evaluation set at 16x16 resolution."""

    return make_stop_sign_eval_set(num_views=6, image_size=16, seed=11)


@pytest.fixture(scope="session")
def tiny_sticker_masks(tiny_eval_set):
    """Sticker masks for the tiny evaluation set."""

    return np.stack([sticker_mask(mask) for mask in tiny_eval_set.masks])
